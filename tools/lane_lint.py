#!/usr/bin/env python3
"""lane_lint: lane-confinement analyzer for the agile-migration tree.

The lane runtime (src/sim/lanes.*) gives parallel windows determinism by
contract, not by locks: lane events may only touch their own channel's state,
cross-lane work goes through LaneCoordinator::post, and the thread-local
sim/log/trace registries are only rebound by the coordinator's thread hooks.
Clang -Wthread-safety (tools/check_thread_safety.sh) enforces the *locked*
structures; this tool enforces the *unlocked* contract — the part no compiler
flag covers — by building a call graph from every lambda handed to a lane or
pool entry point and walking what it can reach.

Rules (each finding carries its rule id):

  LL001 cross-lane-schedule    Simulation::schedule_at / schedule_after /
                               schedule_periodic / cancel reachable from lane
                               or pool-task context. Lane code must use
                               LaneCoordinator::post (cross-lane) or
                               LaneCoordinator::schedule (lane-local): raw
                               Simulation mutation from a lane thread races
                               the coordinator's heap.
  LL002 raw-sim-capture        A raw Simulation* / TraceRecorder* (or a
                               default [&]/[=] capture, which can smuggle one
                               invisibly) captured into a ThreadPool::submit
                               lambda. Pool tasks outlive scopes and run on
                               foreign threads; they must receive explicitly
                               owned or lane-confined state.
  LL003 thread-local-in-task   A read/write of a registered thread_local
                               (t_lane_ctx, g_active_sim, g_saved_sim)
                               reachable from task/lane context outside the
                               sanctioned accessors. Worker threads see
                               different instances than the coordinator; only
                               the lane runtime itself and the thread hooks
                               may touch these.
  LL004 plain-shared-counter   A registered cross-lane counter whose member
                               declaration is not util::RelaxedCell. The
                               registry lives in REGISTRY below and is
                               documented at each member (network.hpp,
                               vmd.hpp, relaxed_cell.hpp).

Frontends (--frontend=auto|tokens|libclang):

  tokens    Self-contained deterministic token-level C++ frontend (comments,
            strings, raw strings, preprocessor lines stripped; function
            definitions, lambdas with capture lists and host-call context,
            calls with receiver chains, thread_local declarations, member
            declarations). Always available; the reference implementation.
  libclang  Adds a clang.cindex AST pass over the CMake compilation database
            that cross-validates the token model (function definitions,
            thread_local variables, registry member types) against the real
            AST and augments it with anything the tokens missed. Requires the
            python clang bindings; `--frontend=libclang` exits 77 (SKIP)
            without them, `auto` silently runs tokens-only.

Known limits (accepted, documented): calls through std::function values and
function pointers (e.g. &active_sim_now installed as a log time source by the
cluster's thread hooks) are invisible to the graph — those sites are covered
by the hook sanctioning and by TSan (tools/analyze.sh tsan).

Output: human-readable findings plus --json for machine consumption. The
allowlist (tools/lane_lint_allow.txt) suppresses individual findings; every
entry MUST carry a justification comment and every entry MUST still match a
finding — unjustified or stale entries are hard errors (exit 2), so the list
can only shrink unless someone writes down a reason.

Exit codes: 0 clean, 1 unallowlisted findings, 2 configuration error
(bad/stale allowlist, registry member not found), 77 requested frontend
unavailable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

TOOL_VERSION = "1.0"

# Directories whose code is lane-rule-scoped (LL001-LL003). bench/ is
# deliberately outside: each sweep task owns its entire Simulation, so the
# lane rules (which police tasks *sharing* one simulation) do not apply —
# see bench/parallel_sweep.hpp. src/stats is in scope because the cluster's
# periodic scrape fans per-host metric collection across the lanes: stats
# cells are written from lane context, so the module is subject to the same
# confinement contract as the lane runtime itself. src/net is in scope
# because lane events feed the shared topology model concurrently (client
# traffic, demand-RPC accounting): its per-link accumulators must stay
# commutative RelaxedCells (LL004) and its code is lane-confined like the
# rest of the quantum loop.
SCAN_DIRS = ("src/sim", "src/host", "src/core", "src/stats", "src/net")

# Entry points whose directly-passed lambdas become call-graph roots, with
# the execution context the lambda runs in. `schedule` is only an entry
# point on a lane-coordinator receiver (the bare name is too generic).
ENTRY_POINTS = {
    "submit": "task",            # util::ThreadPool::submit
    "post": "lane",              # sim::LaneCoordinator::post
    "schedule": "lane",          # sim::LaneCoordinator::schedule (see below)
    "schedule_on_host": "lane",  # host::Cluster::schedule_on_host
    "parallel_phase": "lane",    # host::Cluster::parallel_phase
    "set_thread_hooks": "hook",  # sim::LaneCoordinator::set_thread_hooks
}
SCHEDULE_RECEIVER_HINTS = ("lanes", "coordinator")

# LL001: Simulation event-queue mutators banned outside the coordinator.
BANNED_SCHEDULERS = {"schedule_at", "schedule_after", "schedule_periodic"}
# `cancel` is only banned on a simulation-ish receiver (PeriodicTask handles
# also have cancel(), and those are coordinator-owned).
BANNED_CANCEL_RECEIVER_HINT = "sim"

# LL003: the lane runtime's own accessors may touch the thread-local
# registry; everything else reachable from task/lane context may not.
SANCTIONED_TL_USERS = {
    "LaneCoordinator::run_lane",
    "LaneCoordinator::schedule",
    "LaneCoordinator::post",
    "LaneCoordinator::thread_event_time",
}

# LL002: pointer/reference types that must never ride raw into a pool task.
FORBIDDEN_CAPTURE_TYPES = ("Simulation", "TraceRecorder")

# LL004 registry: (file, class, member) triples that are documented as
# cross-lane commutative counters and therefore MUST be util::RelaxedCell.
# Keep in sync with the "lane_lint LL004 registry" comments at each member.
REGISTRY = (
    # Per-link background-byte accumulator of the topology model: client
    # traffic and demand-RPCs debit every link of a path from parallel
    # lanes (network.hpp documents the contract at the member).
    ("src/net/network.hpp", "Link", "background"),
    ("src/vmd/vmd.hpp", "VmdServer", "memory_pages_"),
    ("src/vmd/vmd.hpp", "VmdServer", "disk_pages_"),
    # The stats registry's value cells: lane events bump them concurrently
    # during the scrape fan-out, so golden stats snapshots are only
    # lane-count-independent while every cell stays a commutative
    # RelaxedCell (stats.hpp documents the contract at each member).
    ("src/stats/stats.hpp", "Counter", "v_"),
    ("src/stats/stats.hpp", "Gauge", "v_"),
    ("src/stats/stats.hpp", "Histogram", "buckets_"),
    ("src/stats/stats.hpp", "Histogram", "count_"),
    ("src/stats/stats.hpp", "Histogram", "sum_"),
)

RULE_TITLES = {
    "LL001": "cross-lane-schedule",
    "LL002": "raw-sim-capture",
    "LL003": "thread-local-in-task",
    "LL004": "plain-shared-counter",
}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "do", "else", "try", "new", "delete", "throw", "case", "default",
    "static_assert", "co_return", "co_await", "co_yield",
}

# ">>" appears when nested templates close without a space, e.g.
# std::vector<util::RelaxedCell<std::uint64_t>> (stats.hpp's bucket array).
TYPE_CHAIN_TOKENS = {"::", "<", ">", ">>", ",", "*", "&", "(", ")"}


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

class Tok:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind      # 'id' | 'num' | 'str' | 'punct'
        self.value = value
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Tok({self.kind},{self.value!r},{self.line})"


PUNCT3 = ("<<=", ">>=", "...", "->*")
PUNCT2 = ("::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
          "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--")


def tokenize(text):
    """C++-aware token stream: comments, preprocessor lines, and string
    contents stripped; line numbers preserved."""
    toks = []
    i, n, line = 0, len(text), 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and at_line_start:
            # Preprocessor logical line (with backslash continuations).
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                # Count the continuation before the newline, ignoring CR.
                k = j - 1
                while k >= 0 and text[k] in " \t\r":
                    k -= 1
                line += 1
                i = j + 1
                if k < 0 or text[k] != "\\":
                    break
            at_line_start = True
            continue
        at_line_start = False
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j < 0:
                    break
                line += text.count("\n", i, j + 2)
                i = j + 2
                continue
        if c == "R" and text[i:i + 2] == 'R"':
            # Raw string literal R"delim( ... )delim"
            j = text.find("(", i + 2)
            if j > 0:
                delim = text[i + 2:j]
                end = text.find(")" + delim + '"', j + 1)
                if end > 0:
                    line += text.count("\n", i, end)
                    toks.append(Tok("str", "<rawstr>", line))
                    i = end + len(delim) + 2
                    continue
        if c == '"' or c == "'":
            q = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == q:
                    break
                if text[j] == "\n":  # unterminated; bail at line end
                    break
                j += 1
            toks.append(Tok("str", "<str>" if q == '"' else "<chr>", line))
            i = min(j + 1, n)
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        three, two = text[i:i + 3], text[i:i + 2]
        if three in PUNCT3:
            toks.append(Tok("punct", three, line))
            i += 3
        elif two in PUNCT2:
            toks.append(Tok("punct", two, line))
            i += 2
        else:
            toks.append(Tok("punct", c, line))
            i += 1
    return toks


# ---------------------------------------------------------------------------
# Per-file structural model
# ---------------------------------------------------------------------------

class FuncDef:
    __slots__ = ("qualname", "name", "file", "line", "body", "calls",
                 "tl_refs")

    def __init__(self, qualname, file, line, body):
        self.qualname = qualname
        self.name = qualname.split("::")[-1]
        self.file = file
        self.line = line
        self.body = body          # (open_brace_idx, close_brace_idx)
        self.calls = []           # [(name, receiver, line)]
        self.tl_refs = []         # [(tl_name, line)]


class LambdaExpr:
    __slots__ = ("file", "line", "captures", "body", "host_call",
                 "host_receiver", "calls", "tl_refs")

    def __init__(self, file, line, captures, body, host_call, host_receiver):
        self.file = file
        self.line = line
        self.captures = captures        # list of capture token lists
        self.body = body                # (open_brace_idx, close_brace_idx)
        self.host_call = host_call      # callee name the lambda is an arg of
        self.host_receiver = host_receiver
        self.calls = []
        self.tl_refs = []


class FileModel:
    def __init__(self, path, relpath, toks):
        self.path = path
        self.relpath = relpath
        self.toks = toks
        self.defs = []          # FuncDef
        self.lambdas = []       # LambdaExpr
        self.tl_names = []      # thread_local variable names declared here
        self.match = {}         # open-bracket idx -> close idx (and reverse)


def _match_brackets(toks, match):
    stacks = {"(": [], "{": [], "[": []}
    closer = {")": "(", "}": "{", "]": "["}
    for i, t in enumerate(toks):
        if t.kind != "punct":
            continue
        if t.value in stacks:
            stacks[t.value].append(i)
        elif t.value in closer:
            st = stacks[closer[t.value]]
            if st:
                o = st.pop()
                match[o] = i
                match[i] = o


def _walk_name_chain(toks, k):
    """Given index k of an identifier, walk back over `A::B::` qualifiers.
    Returns (chain_string, index_of_first_chain_token)."""
    parts = [toks[k].value]
    start = k
    while start >= 2 and toks[start - 1].value == "::" and \
            toks[start - 2].kind == "id":
        parts.insert(0, toks[start - 2].value)
        start -= 2
    return "::".join(parts), start


def _receiver_chain(toks, name_start, limit=16):
    """Token text immediately preceding a call name — `lanes_->`,
    `bed->cluster().`, `trace::` — used for receiver-hint matching."""
    parts = []
    j = name_start - 1
    while j >= 0 and len(parts) < limit:
        v = toks[j].value
        if v in (".", "->", "::"):
            parts.append(v)
            j -= 1
        elif toks[j].kind == "id" and parts and parts[-1] in (".", "->", "::"):
            parts.append(v)
            j -= 1
        elif v == ")" and parts and parts[-1] in (".", "->"):
            parts.append(v)
            j -= 1
        else:
            break
    return "".join(reversed(parts))


def _skip_trailing_specifiers(toks, j, match):
    """From index j (just before a `{`), walk back over `const noexcept
    override final mutable`, AGILE_*(...) attribute macros, and a trailing
    `-> type` return. Returns the index expected to hold the parameter
    list's `)`."""
    while j >= 0:
        t = toks[j]
        if t.kind == "id" and t.value in ("const", "noexcept", "override",
                                          "final", "mutable"):
            j -= 1
            continue
        if t.value == ")" and j in match:
            o = match[j]
            if o >= 1 and toks[o - 1].kind == "id" and \
                    toks[o - 1].value.startswith("AGILE_"):
                j = o - 2
                continue
            # `noexcept(...)`
            if o >= 1 and toks[o - 1].value == "noexcept":
                j = o - 2
                continue
            return j
        if t.kind == "id" or t.value in ("::", "<", ">", "*", "&", ","):
            # Possibly a trailing return type; scan back for `->`.
            k = j
            while k >= 0 and (toks[k].kind == "id" or
                              toks[k].value in ("::", "<", ">", "*", "&",
                                                ",", "(", ")")):
                k -= 1
            if k >= 0 and toks[k].value == "->":
                j = k - 1
                continue
            return j
        return j
    return j


def _ctor_initlist_walkback(toks, j, match):
    """From index j holding a `)` just before `{`, walk back over a possible
    constructor init list `: a_(x), b_{y}` and return the index of the real
    parameter-list `)` (or j itself when there is no init list)."""
    cur = j
    for _ in range(64):  # bounded: init lists are short
        if toks[cur].value not in (")", "}") or cur not in match:
            return j
        o = match[cur]
        k = o - 1
        if k < 0 or toks[k].kind != "id":
            return j
        _, start = _walk_name_chain(toks, k)
        p = start - 1
        if p < 0:
            return j
        if toks[p].value == ",":
            cur = p - 1
            continue
        if toks[p].value == ":" and p >= 1 and toks[p - 1].value == ")":
            return p - 1
        return j
    return j


def build_file_model(path, relpath, text):
    toks = tokenize(text)
    fm = FileModel(path, relpath, toks)
    _match_brackets(toks, fm.match)
    n = len(toks)

    # thread_local declarations (file scope in this tree).
    i = 0
    while i < n:
        if toks[i].kind == "id" and toks[i].value == "thread_local":
            j = i + 1
            last_id = None
            while j < n and toks[j].value not in (";", "="):
                if toks[j].kind == "id":
                    last_id = toks[j].value
                j += 1
            if last_id:
                fm.tl_names.append(last_id)
            i = j
        i += 1

    # Structural pass: classes, function definitions, lambdas.
    class_stack = []   # (name, close_brace_idx)
    lambda_bodies = set()
    paren_callees = {}  # open-paren idx -> (callee name, receiver)

    i = 0
    while i < n:
        t = toks[i]
        # Maintain class stack.
        while class_stack and i > class_stack[-1][1]:
            class_stack.pop()

        if t.kind == "id" and i + 1 < n and toks[i + 1].value == "(" and \
                t.value not in CPP_KEYWORDS:
            chain, start = _walk_name_chain(toks, i)
            paren_callees[i + 1] = (t.value, _receiver_chain(toks, start))

        if t.value == "[" and t.kind == "punct":
            lam = _try_lambda(fm, i, paren_callees, lambda_bodies)
            if lam is not None:
                fm.lambdas.append(lam)

        if t.value == "{" and t.kind == "punct" and i in fm.match:
            close = fm.match[i]
            if i in lambda_bodies:
                pass  # already recorded as a lambda body
            else:
                kind, name = _classify_brace(fm, i, class_stack)
                if kind == "class":
                    class_stack.append((name, close))
                elif kind == "func":
                    qual = name
                    if "::" not in qual and class_stack:
                        qual = class_stack[-1][0] + "::" + qual
                    fm.defs.append(FuncDef(qual, relpath, toks[i].line,
                                           (i, close)))
        i += 1

    for d in fm.defs:
        _scan_body(fm, d.body, d.calls, d.tl_refs)
    for lam in fm.lambdas:
        _scan_body(fm, lam.body, lam.calls, lam.tl_refs)
    return fm


def _try_lambda(fm, i, paren_callees, lambda_bodies):
    toks, match = fm.toks, fm.match
    n = len(toks)
    prev = toks[i - 1] if i > 0 else None
    if prev is not None:
        if prev.kind in ("id", "num", "str") or prev.value in (")", "]"):
            return None  # subscript / array declarator / attribute tail
    if i + 1 < n and toks[i + 1].value == "[":
        return None  # [[attribute]]
    if i not in match:
        return None
    cap_close = match[i]
    captures = _split_captures(toks, i + 1, cap_close)
    j = cap_close + 1
    if j < n and toks[j].value == "(" and j in match:
        j = match[j] + 1
    # Specifiers / trailing return before the body.
    guard = 0
    while j < n and toks[j].value != "{" and guard < 32:
        if toks[j].kind == "id" and toks[j].value in ("mutable", "noexcept",
                                                      "constexpr"):
            j += 1
        elif toks[j].value == "->":
            j += 1
            while j < n and (toks[j].kind == "id" or
                             toks[j].value in ("::", "<", ">", "*", "&")):
                j += 1
        elif toks[j].value == "(" and j in match:
            j = match[j] + 1  # noexcept(...)
        else:
            return None
        guard += 1
    if j >= n or toks[j].value != "{" or j not in match:
        return None
    lambda_bodies.add(j)
    # Host call: the innermost unclosed call paren enclosing the `[`.
    host_call, host_receiver = None, ""
    depth_opens = [o for o in paren_callees
                   if o < i and match.get(o, -1) > i]
    if depth_opens:
        o = max(depth_opens)
        host_call, host_receiver = paren_callees[o]
    return LambdaExpr(fm.relpath, toks[i].line, captures, (j, match[j]),
                      host_call, host_receiver)


def _split_captures(toks, start, end):
    """Split a capture list's tokens on top-level commas."""
    entries, cur, depth = [], [], 0
    for k in range(start, end):
        v = toks[k].value
        if v in ("(", "[", "{", "<"):
            depth += 1
        elif v in (")", "]", "}", ">"):
            depth = max(0, depth - 1)
        if v == "," and depth == 0:
            if cur:
                entries.append(cur)
            cur = []
        else:
            cur.append(toks[k])
    if cur:
        entries.append(cur)
    return entries


def _classify_brace(fm, i, class_stack):
    toks, match = fm.toks, fm.match
    j = i - 1
    if j < 0:
        return "block", None
    t = toks[j]
    if t.kind == "id":
        if t.value == "namespace":
            return "ns", ""
        if j >= 1 and toks[j - 1].value == "namespace":
            return "ns", t.value
        # class/struct (possibly with bases or attribute macros).
        k = j
        guard = 0
        while k >= 0 and guard < 48:
            v = toks[k].value
            if toks[k].kind == "id" and v in ("class", "struct", "union"):
                m = k + 1
                while m < len(toks) and toks[m].kind == "id" and \
                        toks[m].value.startswith("AGILE_"):
                    m += 1
                    if m < len(toks) and toks[m].value == "(":
                        m = match.get(m, m) + 1
                if m < len(toks) and toks[m].kind == "id":
                    return "class", toks[m].value
                return "block", None
            if toks[k].kind == "id" or v in (":", ",", "::", "<", ">",
                                             "final"):
                k -= 1
                guard += 1
                continue
            break
        return "block", None
    if t.value == ")":
        j = _skip_trailing_specifiers(toks, i - 1, match)
        if j < 0 or toks[j].value != ")":
            return "block", None
        j = _ctor_initlist_walkback(toks, j, match)
        if toks[j].value != ")" or j not in match:
            return "block", None
        o = match[j]
        k = o - 1
        if k < 0:
            return "block", None
        if toks[k].kind == "id":
            if toks[k].value in ("if", "for", "while", "switch", "catch"):
                return "block", None
            chain, start = _walk_name_chain(toks, k)
            p = start - 1
            if p >= 0 and toks[p].value in (".", "->"):
                return "block", None
            return "func", chain
        if toks[k].value == ")" and k >= 2 and toks[k - 1].value == "(" and \
                toks[k - 2].value == "operator":
            return "func", "operator()"
        return "block", None
    return "block", None


def _scan_body(fm, body, calls, tl_refs):
    toks = fm.toks
    s, e = body
    tl_set = set(fm.tl_names) | set(GLOBAL_TL_NAMES)
    for k in range(s + 1, e):
        t = toks[k]
        if t.kind != "id":
            continue
        nxt = toks[k + 1] if k + 1 < len(toks) else None
        if nxt is not None and nxt.value == "(" and \
                t.value not in CPP_KEYWORDS:
            _, start = _walk_name_chain(toks, k)
            calls.append((t.value, _receiver_chain(toks, start), t.line))
        if t.value in tl_set and (nxt is None or nxt.value != "("):
            tl_refs.append((t.value, t.line))


# Populated before body scans run: thread_local names across all scanned
# files, so a TL declared in lanes.cpp is recognized in cluster.cpp bodies.
GLOBAL_TL_NAMES = set()


# ---------------------------------------------------------------------------
# Whole-tree model + rules
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, rule, file, line, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message
        self.allowlisted = False
        self.justification = None

    def key(self):
        return (self.file, self.line, self.rule, self.message)

    def as_json(self):
        d = {
            "rule": self.rule,
            "title": RULE_TITLES.get(self.rule, ""),
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "allowlisted": self.allowlisted,
        }
        if self.justification:
            d["justification"] = self.justification
        return d


class Model:
    def __init__(self):
        self.files = []          # FileModel
        self.defs_by_name = {}   # last segment -> [FuncDef]
        self.defs_by_qual = {}   # qualname -> FuncDef

    def add(self, fm):
        self.files.append(fm)
        for d in fm.defs:
            self.defs_by_name.setdefault(d.name, []).append(d)
            self.defs_by_qual.setdefault(d.qualname, d)

    def resolve(self, call_name):
        return self.defs_by_name.get(call_name, ())


def load_model(root, scan_files, extra_tl_names=()):
    GLOBAL_TL_NAMES.clear()
    GLOBAL_TL_NAMES.update(extra_tl_names)
    pre = []
    for rel in scan_files:
        path = os.path.join(root, rel)
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        pre.append((rel, path, text))
        # First pass: just harvest thread_local names.
        toks = tokenize(text)
        i = 0
        while i < len(toks):
            if toks[i].kind == "id" and toks[i].value == "thread_local":
                j = i + 1
                last_id = None
                while j < len(toks) and toks[j].value not in (";", "="):
                    if toks[j].kind == "id":
                        last_id = toks[j].value
                    j += 1
                if last_id:
                    GLOBAL_TL_NAMES.add(last_id)
                i = j
            i += 1
    model = Model()
    for rel, path, text in pre:
        model.add(build_file_model(path, rel, text))
    return model


def entry_context(lam):
    """Context a lambda runs in, or None when it is not an entry-point arg."""
    if lam.host_call is None:
        return None
    ctx = ENTRY_POINTS.get(lam.host_call)
    if ctx is None:
        return None
    if lam.host_call == "schedule":
        recv = lam.host_receiver.lower()
        if not any(h in recv for h in SCHEDULE_RECEIVER_HINTS):
            return None
    return ctx


def _check_calls_ll001(findings, calls, file, via):
    for name, receiver, line in calls:
        if name in BANNED_SCHEDULERS:
            findings.append(Finding(
                "LL001", file, line,
                f"Simulation::{name} reachable from {via}; lane code must "
                f"go through LaneCoordinator::post/schedule"))
        elif name == "cancel" and \
                BANNED_CANCEL_RECEIVER_HINT in receiver.lower():
            findings.append(Finding(
                "LL001", file, line,
                f"Simulation::cancel (receiver `{receiver}`) reachable from "
                f"{via}; cancellation belongs to the coordinator"))


def _capture_is_forbidden(fm, lam, entry_toks):
    """Does this capture entry name a raw Simulation*/TraceRecorder*?"""
    ids = [t for t in entry_toks if t.kind == "id" and t.value != "this"]
    if not ids:
        return None
    name = ids[0].value
    # Init-captures: `x = expr` — check the init expression's type names.
    for t in entry_toks:
        if t.kind == "id" and t.value in FORBIDDEN_CAPTURE_TYPES:
            return name
    # Find the nearest preceding declaration-ish occurrence of `name` and
    # look a few tokens back for a forbidden type name.
    toks = fm.toks
    lam_start = None
    for k in range(len(toks)):
        if toks[k].line >= lam.line and toks[k].value == "[":
            lam_start = k
            break
    if lam_start is None:
        return None
    for k in range(lam_start - 1, -1, -1):
        if toks[k].kind == "id" and toks[k].value == name:
            lo = max(0, k - 6)
            window = [toks[m].value for m in range(lo, k)]
            if any(w in FORBIDDEN_CAPTURE_TYPES for w in window):
                return name
            return None  # nearest declaration looks benign
    return None


def run_lane_rules(model):
    findings = []
    # --- Per-root reachability ----------------------------------------
    for fm in model.files:
        for lam in fm.lambdas:
            ctx = entry_context(lam)
            if ctx is None:
                continue
            root_desc = (f"lambda at {lam.file}:{lam.line} passed to "
                         f"{lam.host_call}()")
            # LL002: capture audit for pool tasks.
            if ctx == "task":
                for entry in lam.captures:
                    vals = [t.value for t in entry]
                    if vals == ["&"] or vals == ["="]:
                        findings.append(Finding(
                            "LL002", lam.file, lam.line,
                            f"default capture [{vals[0]}] in ThreadPool task "
                            f"({root_desc}); captures must be explicit so "
                            f"raw Simulation*/TraceRecorder* cannot ride "
                            f"along invisibly"))
                        continue
                    bad = _capture_is_forbidden(fm, lam, entry)
                    if bad is not None:
                        findings.append(Finding(
                            "LL002", lam.file, lam.line,
                            f"raw Simulation*/TraceRecorder* `{bad}` "
                            f"captured into ThreadPool task ({root_desc})"))
            if ctx == "hook":
                continue  # hooks are the sanctioned TL rebinding point
            # Direct body checks.
            _check_calls_ll001(findings, lam.calls, lam.file, root_desc)
            for tl_name, line in lam.tl_refs:
                findings.append(Finding(
                    "LL003", lam.file, line,
                    f"thread_local `{tl_name}` touched directly inside "
                    f"{root_desc}"))
            # BFS through named callees.
            seen = set()
            work = [(name, root_desc) for name, _, _ in lam.calls]
            while work:
                name, path = work.pop(0)
                for d in model.resolve(name):
                    if d.qualname in seen:
                        continue
                    seen.add(d.qualname)
                    via = f"{path} -> {d.qualname}"
                    _check_calls_ll001(findings, d.calls, d.file, via)
                    if d.qualname not in SANCTIONED_TL_USERS:
                        for tl_name, line in d.tl_refs:
                            findings.append(Finding(
                                "LL003", d.file, line,
                                f"thread_local `{tl_name}` read in "
                                f"{d.qualname} ({via}); only the lane "
                                f"runtime and thread hooks may touch the "
                                f"registry"))
                    for cname, _, _ in d.calls:
                        work.append((cname, via))
    # Dedupe (a def reachable from several roots reports once).
    out, seen_keys = [], set()
    for f in findings:
        k = f.key()
        if k not in seen_keys:
            seen_keys.add(k)
            out.append(f)
    return out


def run_registry_rule(root, registry, config_errors):
    """LL004: every registered counter member must be util::RelaxedCell."""
    findings = []
    by_file = {}
    for file, cls, member in registry:
        by_file.setdefault(file, []).append((cls, member))
    for rel in sorted(by_file):
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            config_errors.append(f"LL004 registry file missing: {rel}")
            continue
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            toks = tokenize(f.read())
        match = {}
        _match_brackets(toks, match)
        # Track class extents.
        class_spans = []  # (name, open_idx, close_idx)
        for i, t in enumerate(toks):
            if t.kind == "id" and t.value in ("class", "struct") and \
                    i + 1 < len(toks) and toks[i + 1].kind == "id":
                j = i + 1
                while j < len(toks) and toks[j].value not in ("{", ";"):
                    j += 1
                if j < len(toks) and toks[j].value == "{" and j in match:
                    class_spans.append((toks[i + 1].value, j, match[j]))
        for cls, member in by_file[rel]:
            spans = [s for s in class_spans if s[0] == cls]
            if not spans:
                config_errors.append(
                    f"LL004 registry: class `{cls}` not found in {rel}")
                continue
            found_decl = False
            for _, o, c in spans:
                for k in range(o + 1, c):
                    t = toks[k]
                    if t.kind != "id" or t.value != member:
                        continue
                    nxt = toks[k + 1] if k + 1 < len(toks) else None
                    if nxt is None or nxt.value not in (";", "=", "{"):
                        continue
                    # Walk the declaration's type tokens backwards.
                    type_toks, j, ok = [], k - 1, True
                    while j > o:
                        v = toks[j].value
                        if v in (";", "{", "}") or \
                                (v == ":" and toks[j - 1].kind == "id" and
                                 toks[j - 1].value in ("public", "private",
                                                       "protected")):
                            break
                        if (toks[j].kind == "id" and
                                v not in CPP_KEYWORDS) or \
                                v in TYPE_CHAIN_TOKENS:
                            type_toks.append(v)
                            j -= 1
                            continue
                        ok = False
                        break
                    if not ok or not type_toks:
                        continue
                    found_decl = True
                    if "RelaxedCell" not in type_toks:
                        findings.append(Finding(
                            "LL004", rel, t.line,
                            f"{cls}::{member} is in the cross-lane counter "
                            f"registry but is not declared as "
                            f"util::RelaxedCell (declared type: "
                            f"`{' '.join(reversed(type_toks))}`)"))
            if not found_decl:
                config_errors.append(
                    f"LL004 registry: member `{cls}::{member}` not found "
                    f"in {rel} — fix the registry or the header comment")
    return findings


# ---------------------------------------------------------------------------
# Allowlist
# ---------------------------------------------------------------------------

def parse_allowlist(path, errors):
    """Format per entry line:
        RULE :: file-suffix :: message-substring  # justification
    The justification is mandatory; entries without one are hard errors."""
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if "#" in line:
                body, justification = line.split("#", 1)
                justification = justification.strip()
            else:
                body, justification = line, ""
            parts = [p.strip() for p in body.split("::")]
            if len(parts) != 3 or not all(parts):
                errors.append(
                    f"{path}:{lineno}: malformed allowlist entry "
                    f"(want `RULE :: file-suffix :: match  # justification`)")
                continue
            if not justification:
                errors.append(
                    f"{path}:{lineno}: allowlist entry for {parts[0]} has no "
                    f"justification comment — every suppression must say why")
                continue
            entries.append({
                "rule": parts[0], "file_suffix": parts[1],
                "match": parts[2], "justification": justification,
                "line": lineno, "used": False,
            })
    return entries


def apply_allowlist(findings, entries, errors, path):
    for f in findings:
        for e in entries:
            if e["rule"] != f.rule:
                continue
            if not f.file.endswith(e["file_suffix"]):
                continue
            if e["match"] not in f.message:
                continue
            f.allowlisted = True
            f.justification = e["justification"]
            e["used"] = True
            break
    for e in entries:
        if not e["used"]:
            errors.append(
                f"{path}:{e['line']}: stale allowlist entry ({e['rule']} :: "
                f"{e['file_suffix']} :: {e['match']}) matches no finding — "
                f"delete it")


# ---------------------------------------------------------------------------
# Compilation database + libclang cross-check
# ---------------------------------------------------------------------------

def find_compdb(root, explicit):
    if explicit:
        return explicit if os.path.exists(explicit) else None
    for d in sorted(os.listdir(root)):
        cand = os.path.join(root, d, "compile_commands.json")
        if d.startswith("build") and os.path.exists(cand):
            return cand
    return None


def scan_file_list(root, compdb_path):
    """Deterministic scan set: headers+sources under SCAN_DIRS, TU list
    cross-checked against the compilation database when one exists."""
    files = set()
    for d in SCAN_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith((".cpp", ".hpp", ".h", ".cc")):
                    files.add(os.path.relpath(os.path.join(dirpath, fn),
                                              root))
    if compdb_path:
        try:
            with open(compdb_path, "r", encoding="utf-8") as f:
                for entry in json.load(f):
                    rel = os.path.relpath(
                        os.path.join(entry.get("directory", root),
                                     entry["file"]), root)
                    if any(rel.startswith(d + os.sep) or rel.startswith(d + "/")
                           for d in SCAN_DIRS):
                        files.add(rel)
        except (OSError, ValueError, KeyError):
            pass
    return sorted(files)


def libclang_crosscheck(root, scan_files, compdb_path, model, notes):
    """Optional clang.cindex AST pass. Cross-validates the token model
    (function definitions, thread_locals, registry member types) against the
    real AST and augments it with anything the tokens missed. Returns True
    when the pass actually ran."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return False
    try:
        index = cindex.Index.create()
    except Exception as e:  # library present but unusable
        notes.append(f"libclang unusable: {e}")
        return False

    args_for = {}
    if compdb_path:
        try:
            db = cindex.CompilationDatabase.fromDirectory(
                os.path.dirname(compdb_path))
            for rel in scan_files:
                cmds = db.getCompileCommands(os.path.join(root, rel))
                if cmds:
                    args = [a for a in list(cmds[0].arguments)[1:-1]
                            if a not in ("-c", "-o")]
                    args_for[rel] = args
        except Exception:
            pass

    ast_defs, ast_tls = set(), set()
    for rel in scan_files:
        if not rel.endswith((".cpp", ".cc")):
            continue
        args = args_for.get(rel, ["-std=c++20", "-I" + os.path.join(root,
                                                                    "src")])
        try:
            tu = index.parse(os.path.join(root, rel), args=args)
        except Exception as e:
            notes.append(f"libclang parse failed for {rel}: {e}")
            continue
        for cur in tu.cursor.walk_preorder():
            try:
                loc_file = cur.location.file
                if loc_file is None or \
                        os.path.relpath(loc_file.name, root) != rel:
                    continue
                if cur.kind in (cindex.CursorKind.FUNCTION_DECL,
                                cindex.CursorKind.CXX_METHOD,
                                cindex.CursorKind.CONSTRUCTOR) and \
                        cur.is_definition():
                    ast_defs.add((rel, cur.spelling))
                if cur.kind == cindex.CursorKind.VAR_DECL and \
                        "thread_local" in [t.spelling for t in
                                           cur.get_tokens()][:3]:
                    ast_tls.add(cur.spelling)
            except Exception:
                continue

    tok_defs = {(d.file, d.name) for fm in model.files for d in fm.defs}
    missed = sorted(ast_defs - tok_defs)
    for rel, name in missed:
        notes.append(f"libclang: token frontend missed definition "
                     f"`{name}` in {rel}")
    for name in sorted(ast_tls - GLOBAL_TL_NAMES):
        GLOBAL_TL_NAMES.add(name)
        notes.append(f"libclang: added thread_local `{name}` missed by the "
                     f"token frontend")
    return True


# ---------------------------------------------------------------------------
# Self-test over the negative fixtures
# ---------------------------------------------------------------------------

def parse_fixture_directives(path):
    expect, registry = None, []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line.startswith("// lane-lint-expect:"):
                expect = line.split(":", 1)[1].strip()
            elif line.startswith("// lane-lint-registry:"):
                spec = line.split("lane-lint-registry:", 1)[1].strip()
                cls, member = spec.split("::")
                registry.append((cls.strip(), member.strip()))
    return expect, registry


def analyze_fixture(root, rel):
    model = load_model(root, [rel])
    findings = run_lane_rules(model)
    expect, registry = parse_fixture_directives(os.path.join(root, rel))
    config_errors = []
    reg = tuple((rel, cls, member) for cls, member in registry)
    findings += run_registry_rule(root, reg, config_errors)
    return expect, findings, config_errors


def self_test(root):
    fixture_dir = os.path.join(root, "tools", "lane_lint_fixtures")
    fixtures = sorted(
        os.path.join("tools", "lane_lint_fixtures", f)
        for f in os.listdir(fixture_dir) if f.endswith(".cpp"))
    ok = True
    for rel in fixtures:
        expect, findings, config_errors = analyze_fixture(root, rel)
        rules = sorted(f.rule for f in findings)
        if expect is None:
            print(f"FAIL {rel}: missing `// lane-lint-expect:` directive")
            ok = False
        elif config_errors:
            print(f"FAIL {rel}: config errors: {config_errors}")
            ok = False
        elif rules != [expect]:
            print(f"FAIL {rel}: expected exactly one {expect} finding, "
                  f"got {rules or 'none'}")
            for f in findings:
                print(f"       {f.rule} {f.file}:{f.line} {f.message}")
            ok = False
        else:
            print(f"PASS {rel}: exactly one {expect}")

    # Allowlist validation: unjustified and malformed entries must be hard
    # errors, justified ones must parse.
    import tempfile
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as tf:
        tf.write("LL001 :: foo.cpp :: schedule_at\n")          # no reason
        tf.write("LL001 :: foo.cpp\n")                          # malformed
        tf.write("LL002 :: bar.cpp :: raw  # pool task owns a copy\n")
        bad_path = tf.name
    try:
        errors = []
        entries = parse_allowlist(bad_path, errors)
        if len(errors) == 2 and len(entries) == 1:
            print("PASS allowlist validation: unjustified + malformed "
                  "entries rejected, justified entry parsed")
        else:
            print(f"FAIL allowlist validation: {len(errors)} errors "
                  f"(want 2), {len(entries)} entries (want 1)")
            for e in errors:
                print(f"       {e}")
            ok = False
    finally:
        os.unlink(bad_path)

    # The real tree must be clean modulo the checked-in allowlist.
    rc, payload = analyze_tree(root, frontend="auto", compdb=None,
                               json_out=None, quiet=True)
    unallow = payload["unallowlisted"]
    if rc in (0,) and unallow == 0:
        print(f"PASS real tree: {payload['scanned_files']} files, "
              f"{len(payload['findings'])} finding(s), 0 unallowlisted")
    else:
        print(f"FAIL real tree: exit {rc}, {unallow} unallowlisted "
              f"finding(s)")
        for f in payload["findings"]:
            if not f["allowlisted"]:
                print(f"       {f['rule']} {f['file']}:{f['line']} "
                      f"{f['message']}")
        ok = False
    print("lane_lint self-test:", "OK" if ok else "FAILED")
    return 0 if ok else 1


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def analyze_tree(root, frontend, compdb, json_out, quiet=False):
    notes = []
    compdb_path = find_compdb(root, compdb)
    scan_files = scan_file_list(root, compdb_path)
    model = load_model(root, scan_files)

    used_frontend = "tokens"
    if frontend in ("auto", "libclang"):
        ran = libclang_crosscheck(root, scan_files, compdb_path, model,
                                  notes)
        if ran:
            used_frontend = "tokens+libclang"
        elif frontend == "libclang":
            print("SKIP: --frontend=libclang requested but the python clang "
                  "bindings (clang.cindex) are not importable")
            sys.exit(77)

    config_errors = []
    findings = run_lane_rules(model)
    findings += run_registry_rule(root, REGISTRY, config_errors)
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))

    allow_path = os.path.join(root, "tools", "lane_lint_allow.txt")
    entries = parse_allowlist(allow_path, config_errors)
    apply_allowlist(findings, entries, config_errors,
                    os.path.relpath(allow_path, root))

    unallow = [f for f in findings if not f.allowlisted]
    payload = {
        "tool": "lane_lint",
        "version": TOOL_VERSION,
        "frontend": used_frontend,
        "compdb": (os.path.relpath(compdb_path, root)
                   if compdb_path else None),
        "scanned_files": len(scan_files),
        "rules": {r: RULE_TITLES[r] for r in sorted(RULE_TITLES)},
        "findings": [f.as_json() for f in findings],
        "allowlisted": sum(1 for f in findings if f.allowlisted),
        "unallowlisted": len(unallow),
        "config_errors": config_errors,
        "notes": notes,
    }
    if json_out:
        with open(json_out, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=False)
            f.write("\n")

    if not quiet:
        for note in notes:
            print(f"note: {note}")
        for f in findings:
            status = " [allowlisted: " + f.justification + "]" \
                if f.allowlisted else ""
            print(f"{f.file}:{f.line}: {f.rule} "
                  f"({RULE_TITLES.get(f.rule, '')}): {f.message}{status}")
        for e in config_errors:
            print(f"config error: {e}")
        print(f"lane_lint: {len(scan_files)} files scanned "
              f"({used_frontend}), {len(findings)} finding(s), "
              f"{len(unallow)} unallowlisted, "
              f"{len(config_errors)} config error(s)")

    if config_errors:
        return 2, payload
    return (1 if unallow else 0), payload


def main(argv):
    ap = argparse.ArgumentParser(
        prog="lane_lint.py",
        description="Lane-confinement analyzer (see module docstring).")
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of this script)")
    ap.add_argument("--frontend", choices=("auto", "tokens", "libclang"),
                    default="auto")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json path (default: build*/)")
    ap.add_argument("--json", dest="json_out", default=None,
                    help="write machine-readable findings JSON here")
    ap.add_argument("--self-test", action="store_true",
                    help="run the negative fixtures + real-tree check")
    args = ap.parse_args(argv)

    root = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return self_test(root)
    rc, _ = analyze_tree(root, args.frontend, args.compdb, args.json_out)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
