#!/usr/bin/env python3
"""Summarize and diff stats snapshot JSON files produced by agile::stats.

Usage:
    stats_report.py summarize STATS.json          per-series value stats
    stats_report.py diff A.json B.json            compare two stats exports
    stats_report.py --self-test                   run built-in checks

A stats export is {"series": [...], "snapshots": [...]} (see
src/stats/stats.hpp): `series` describes each registered metric (name, kind,
labels, histogram bounds) in registration order, and every snapshot carries a
`values` array aligned to that order by position. Metrics registered *after*
a snapshot was taken simply have no entry in the earlier rows — rows are
prefixes of the series list, so alignment by index is exact.

`summarize` reports, per series: sample count, min/max/final for scalars;
final count, final sum and the final per-bucket distribution for histograms.
`diff` reports series present on only one side and series whose sample count
or final value moved — the quick way to see what a code change did to a
fleet's health trajectory.

Stdlib only; exit status 0 on success (diff: 0 even when different, it is a
report, not a gate), 2 on usage or parse errors.
"""

import json
import sys


def load_doc(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc.get("series"), list):
        raise ValueError(f"{path}: no series array")
    if not isinstance(doc.get("snapshots"), list):
        raise ValueError(f"{path}: no snapshots array")
    return doc


def series_label(s):
    """`name{k="v",...}` matching the registry's canonical series key."""
    labels = s.get("labels") or {}
    if not labels:
        return s.get("name", "?")
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return f"{s.get('name', '?')}{{{inner}}}"


class Summary:
    """Aggregated stats keyed by series label, in registration order."""

    def __init__(self):
        self.order = []      # labels in series order
        self.scalars = {}    # label -> {"kind", "samples", "min", "max",
                             #           "final"}
        self.histograms = {} # label -> {"samples", "count", "sum",
                             #           "buckets": [(edge, n), ...]}
        self.snapshots = 0
        self.t_first = None
        self.t_last = None


def summarize(doc):
    series = doc["series"]
    snaps = doc["snapshots"]
    s = Summary()
    s.snapshots = len(snaps)
    if snaps:
        s.t_first = snaps[0].get("t_usec", 0)
        s.t_last = snaps[-1].get("t_usec", 0)
    for i, meta in enumerate(series):
        label = series_label(meta)
        kind = meta.get("kind", "?")
        s.order.append(label)
        # Rows are prefixes of the series list: collect column i where
        # present. A snapshot taken before this series registered simply
        # has a shorter row.
        column = [snap["values"][i] for snap in snaps
                  if i < len(snap.get("values", []))]
        if kind == "histogram":
            bounds = meta.get("bounds", [])
            rec = {"samples": len(column), "count": 0, "sum": 0,
                   "buckets": []}
            if column:
                row = column[-1]  # cumulative buckets..., count, sum
                cumulative, count, total = row[:-2], row[-2], row[-1]
                rec["count"], rec["sum"] = count, total
                prev = 0
                for b, cum in enumerate(cumulative):
                    edge = str(bounds[b]) if b < len(bounds) else "+Inf"
                    rec["buckets"].append((edge, cum - prev))
                    prev = cum
            s.histograms[label] = rec
        else:
            vals = [v for v in column]
            rec = {"kind": kind, "samples": len(vals)}
            if vals:
                rec.update(min=min(vals), max=max(vals), final=vals[-1])
            else:
                rec.update(min=0, max=0, final=0)
            s.scalars[label] = rec
    return s


def print_summary(s):
    span = ""
    if s.snapshots:
        span = (f" spanning {s.t_first / 1e6:.3f}s .. "
                f"{s.t_last / 1e6:.3f}s sim time")
    print(f"{len(s.order)} series, {s.snapshots} snapshot(s){span}")
    if s.scalars:
        print("  scalars (series, kind, samples, min/max/final):")
        for label in s.order:
            rec = s.scalars.get(label)
            if rec is None:
                continue
            print(f"    {label:<44} {rec['kind']:<9} {rec['samples']:>5} "
                  f"{rec['min']:>14} {rec['max']:>14} {rec['final']:>14}")
    if s.histograms:
        print("  histograms (series, samples, final count/sum, buckets):")
        for label in s.order:
            rec = s.histograms.get(label)
            if rec is None:
                continue
            print(f"    {label:<44} {rec['samples']:>5} "
                  f"count={rec['count']} sum={rec['sum']}")
            for edge, n in rec["buckets"]:
                if n:
                    print(f"        le {edge:>12}: {n}")


def diff_summaries(a, b):
    """Returns a list of human-readable difference lines (empty if equal)."""
    lines = []
    if a.snapshots != b.snapshots:
        lines.append(f"snapshots: {a.snapshots} -> {b.snapshots}")
    order = list(a.order) + [k for k in b.order if k not in set(a.order)]
    for label in order:
        sa, sb = a.scalars.get(label), b.scalars.get(label)
        ha, hb = a.histograms.get(label), b.histograms.get(label)
        if (sa or ha) and not (sb or hb):
            lines.append(f"series {label}: only in A")
            continue
        if (sb or hb) and not (sa or ha):
            lines.append(f"series {label}: only in B")
            continue
        if sa is not None and sb is not None and sa != sb:
            lines.append(
                f"scalar {label}: samples {sa['samples']} -> "
                f"{sb['samples']}, final {sa['final']} -> {sb['final']}")
        if ha is not None and hb is not None and ha != hb:
            lines.append(
                f"histogram {label}: count {ha['count']} -> {hb['count']}, "
                f"sum {ha['sum']} -> {hb['sum']}")
    return lines


def self_test():
    doc = {
        "series": [
            {"name": "pages_total", "kind": "counter",
             "labels": {"vm": "a"}},
            {"name": "free_ram", "kind": "gauge", "labels": {}},
            {"name": "rtt", "kind": "histogram", "labels": {},
             "bounds": [10, 100]},
            {"name": "late_metric", "kind": "gauge", "labels": {}},
        ],
        "snapshots": [
            # late_metric not yet registered: row is a 3-entry prefix.
            {"t_usec": 1000000, "values": [5, -2, [1, 3, 4, 4, 130]]},
            {"t_usec": 2000000, "values": [9, 7, [2, 5, 7, 7, 660], 42]},
        ],
    }
    s = summarize(doc)
    assert s.snapshots == 2 and s.t_first == 1000000 and \
        s.t_last == 2000000, (s.snapshots, s.t_first, s.t_last)
    pages = s.scalars['pages_total{vm="a"}']
    assert pages == {"kind": "counter", "samples": 2, "min": 5, "max": 9,
                     "final": 9}, pages
    free = s.scalars["free_ram"]
    assert free["min"] == -2 and free["final"] == 7, free
    late = s.scalars["late_metric"]
    assert late == {"kind": "gauge", "samples": 1, "min": 42, "max": 42,
                    "final": 42}, late
    rtt = s.histograms["rtt"]
    assert rtt["samples"] == 2 and rtt["count"] == 7 and \
        rtt["sum"] == 660, rtt
    # Final row [2, 5, 7] cumulative -> per-bucket 2, 3, 2.
    assert rtt["buckets"] == [("10", 2), ("100", 3), ("+Inf", 2)], \
        rtt["buckets"]

    # Identical docs diff clean.
    assert diff_summaries(s, summarize(json.loads(json.dumps(doc)))) == []

    # A counter drift, a dropped series and a histogram drift all surface.
    doc_b = json.loads(json.dumps(doc))
    doc_b["snapshots"][1]["values"][0] = 11              # counter final moves
    doc_b["snapshots"][1]["values"][2] = [2, 5, 9, 9, 900]  # histogram moves
    doc_b["series"].pop()                                # late_metric gone
    for snap in doc_b["snapshots"]:
        snap["values"] = snap["values"][:3]
    delta = diff_summaries(s, summarize(doc_b))
    assert len(delta) == 3, delta
    assert any('scalar pages_total{vm="a"}' in d for d in delta), delta
    assert any("series late_metric: only in A" in d for d in delta), delta
    assert any("histogram rtt" in d for d in delta), delta

    # An empty export (no snapshots yet) summarizes without error.
    empty = summarize({"series": doc["series"], "snapshots": []})
    assert empty.snapshots == 0
    assert empty.scalars["free_ram"]["samples"] == 0

    print("stats_report self-test: OK")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) == 3 and argv[1] == "summarize":
        print_summary(summarize(load_doc(argv[2])))
        return 0
    if len(argv) == 4 and argv[1] == "diff":
        a = summarize(load_doc(argv[2]))
        b = summarize(load_doc(argv[3]))
        delta = diff_summaries(a, b)
        if not delta:
            print("stats exports are equivalent (summary level)")
        else:
            for line in delta:
                print(line)
        return 0
    sys.stderr.write(__doc__)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except (OSError, ValueError, json.JSONDecodeError) as err:
        sys.stderr.write(f"stats_report: {err}\n")
        sys.exit(2)
