// Negative fixture for tools/lane_lint.py --self-test.
//
// A raw Simulation* is captured straight into a ThreadPool::submit lambda.
// Pool tasks outlive their enclosing scope and run on foreign threads, so
// they must receive owned or lane-confined state — never a bare pointer to
// the (single, shared) simulation.
//
// Never compiled — parsed only by the lint's self-test.
// lane-lint-expect: LL002

namespace fx {

struct Simulation {
  void tick();
};

struct ThreadPool {
  template <typename Fn>
  void submit(Fn fn);
};

void fan_out(ThreadPool& pool, Simulation* sim) {
  pool.submit([sim] { sim->tick(); });
}

}  // namespace fx
