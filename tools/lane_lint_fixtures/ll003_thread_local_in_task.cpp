// Negative fixture for tools/lane_lint.py --self-test.
//
// A pool task reaches a thread_local read through a helper that is not on
// the sanctioned accessor list. Worker threads see a different instance of
// every thread_local than the coordinator does, so only the lane runtime
// itself (and the set_thread_hooks lambdas) may touch the registry.
//
// Never compiled — parsed only by the lint's self-test.
// lane-lint-expect: LL003

namespace fx {

thread_local int t_fixture_ctx = 0;

struct ThreadPool {
  template <typename Fn>
  void submit(Fn fn);
};

// Unsanctioned thread-local read, one hop from the task lambda.
int helper() { return t_fixture_ctx; }

void fan_out(ThreadPool& pool) {
  pool.submit([] { return helper(); });
}

}  // namespace fx
