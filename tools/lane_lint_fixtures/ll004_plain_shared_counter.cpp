// Negative fixture for tools/lane_lint.py --self-test.
//
// A counter registered as a cross-lane commutative sum (the
// lane-lint-registry directive below mirrors the REGISTRY table in
// lane_lint.py) is declared as a plain integer instead of
// util::RelaxedCell. Plain members bumped from several lanes are a data
// race; registered counters must be RelaxedCell.
//
// Never compiled — parsed only by the lint's self-test.
// lane-lint-expect: LL004
// lane-lint-registry: FixtureNode::shared_pages

namespace fx {

struct FixtureNode {
  // BAD: bumped from every lane, but not a RelaxedCell.
  unsigned long long shared_pages = 0;
};

}  // namespace fx
