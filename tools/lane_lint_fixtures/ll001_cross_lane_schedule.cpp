// Negative fixture for tools/lane_lint.py --self-test.
//
// A pool task reaches Simulation::schedule_at through one level of
// indirection (the call graph must follow helper(), not just the lambda
// body). Lane/pool code must route cross-lane work through
// LaneCoordinator::post; mutating the simulation's event heap from a worker
// thread races the coordinator.
//
// Never compiled — parsed only by the lint's self-test.
// lane-lint-expect: LL001

namespace fx {

struct Simulation {
  void schedule_at(long t, int ev);
};

struct ThreadPool {
  template <typename Fn>
  void submit(Fn fn);
};

struct Driver {
  Simulation* sim_;
  ThreadPool* pool_;

  // The banned call lives here, one hop away from the task lambda.
  void helper(long t) { sim_->schedule_at(t, 1); }

  void fan_out() {
    pool_->submit([this] { helper(5); });
  }
};

}  // namespace fx
