#!/usr/bin/env python3
"""Collect bench footers into a trajectory file and judge regressions.

Usage:
    bench_history.py collect OUT_DIR TRAJECTORY.json [--label TEXT]
    bench_history.py report TRAJECTORY.json [--threshold PCT]
    bench_history.py --self-test

Every bench binary writes a `BENCH_<name>.json` footer into its output
directory (see bench/bench_common.hpp): bench name, quick/full mode, wall
seconds, job count, cache hit split, total simulated events and the headline
`events_per_sec` throughput. A single footer is a point; this tool makes
them a line:

  `collect` scans OUT_DIR for BENCH_*.json files and appends one entry per
  footer to TRAJECTORY.json (creating it on first use), tagging each entry
  with a monotonically increasing run index and an optional --label (a git
  sha, a PR number, "before"/"after" — any string worth reading later).
  Footers are keyed by (bench, quick, jobs): points from different modes are
  separate series, so a quick smoke run never pollutes a full run's history.

  `report` prints one verdict per series comparing the newest entry's
  events_per_sec against the MEDIAN of all previous entries (the median
  shrugs off a single noisy outlier run, which a mean would chase):

      OK          within --threshold percent of the median (default 10)
      REGRESSED   slower than median by more than the threshold
      IMPROVED    faster than median by more than the threshold
      NEW         first entry for this series, nothing to compare

Exit status: 0 on success — including REGRESSED verdicts; the tool reports,
the reader decides (sim throughput varies across machines, so a hard gate
belongs in CI config, not here). 2 on usage or parse errors.
"""

import glob
import json
import os
import sys

DEFAULT_THRESHOLD_PCT = 10.0

# Footer fields copied into each trajectory entry, footer order.
FOOTER_FIELDS = (
    "bench", "quick", "wall_seconds", "jobs", "runs_executed", "runs_cached",
    "runs_incomplete", "incomplete", "sim_events", "events_per_sec",
)


def series_key(entry):
    """(bench, quick, jobs): one history series per bench mode."""
    return (entry.get("bench", "?"), bool(entry.get("quick")),
            entry.get("jobs", 0))


def series_label(key):
    bench, quick, jobs = key
    return f"{bench} [{'quick' if quick else 'full'}, jobs={jobs}]"


def load_trajectory(path):
    if not os.path.exists(path):
        return {"entries": []}
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc.get("entries"), list):
        raise ValueError(f"{path}: no entries array")
    return doc


def collect(out_dir, trajectory_path, label=""):
    """Appends every BENCH_*.json footer in out_dir to the trajectory.
    Returns the number of footers appended."""
    footers = sorted(glob.glob(os.path.join(out_dir, "BENCH_*.json")))
    if not footers:
        raise ValueError(f"{out_dir}: no BENCH_*.json footers found")
    doc = load_trajectory(trajectory_path)
    run_index = 1 + max((e.get("run", 0) for e in doc["entries"]), default=0)
    appended = 0
    for path in footers:
        with open(path, "r", encoding="utf-8") as f:
            footer = json.load(f)
        if "bench" not in footer or "events_per_sec" not in footer:
            raise ValueError(f"{path}: not a bench footer "
                             f"(missing bench/events_per_sec)")
        entry = {"run": run_index}
        if label:
            entry["label"] = label
        for field in FOOTER_FIELDS:
            if field in footer:
                entry[field] = footer[field]
        doc["entries"].append(entry)
        appended += 1
    with open(trajectory_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    return appended


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def verdicts(doc, threshold_pct=DEFAULT_THRESHOLD_PCT):
    """[(series_label, verdict, latest, baseline_median, delta_pct)] in
    first-seen series order; latest entry per series vs the median of its
    predecessors."""
    by_series = {}
    for entry in doc["entries"]:
        by_series.setdefault(series_key(entry), []).append(entry)
    out = []
    for key, entries in by_series.items():
        latest = entries[-1]["events_per_sec"]
        prior = [e["events_per_sec"] for e in entries[:-1]]
        if not prior:
            out.append((series_label(key), "NEW", latest, None, None))
            continue
        base = median(prior)
        delta_pct = 0.0 if base == 0 else 100.0 * (latest - base) / base
        if delta_pct < -threshold_pct:
            verdict = "REGRESSED"
        elif delta_pct > threshold_pct:
            verdict = "IMPROVED"
        else:
            verdict = "OK"
        out.append((series_label(key), verdict, latest, base, delta_pct))
    return out


def print_report(doc, threshold_pct):
    rows = verdicts(doc, threshold_pct)
    if not rows:
        print("no entries")
        return
    print(f"{len(doc['entries'])} entr(y/ies), {len(rows)} series, "
          f"threshold {threshold_pct:g}%")
    for label, verdict, latest, base, delta_pct in rows:
        if verdict == "NEW":
            print(f"  NEW        {label}: {latest} events/s "
                  f"(first entry, no baseline)")
        else:
            print(f"  {verdict:<10} {label}: {latest} events/s vs "
                  f"median {base:.0f} ({delta_pct:+.1f}%)")


def self_test():
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        out_dir = os.path.join(tmp, "bench_out")
        os.mkdir(out_dir)
        traj = os.path.join(tmp, "trajectory.json")

        def write_footer(bench, eps, quick=True, jobs=1):
            footer = {"bench": bench, "quick": quick, "wall_seconds": 1.0,
                      "jobs": jobs, "runs_executed": 4, "runs_cached": 0,
                      "runs_incomplete": 0, "incomplete": False,
                      "sim_events": 1000, "events_per_sec": eps}
            with open(os.path.join(out_dir, f"BENCH_{bench}.json"), "w",
                      encoding="utf-8") as f:
                json.dump(footer, f)

        # Run 1: two benches, everything NEW.
        write_footer("fig7", 5000)
        write_footer("fleet", 2000)
        assert collect(out_dir, traj, label="r1") == 2
        rows = verdicts(load_trajectory(traj))
        assert [(r[0].split(" ")[0], r[1]) for r in rows] == \
            [("fig7", "NEW"), ("fleet", "NEW")], rows

        # Runs 2-3 build a baseline; run 4 regresses one bench only.
        write_footer("fig7", 5200)
        write_footer("fleet", 2040)
        collect(out_dir, traj, label="r2")
        write_footer("fig7", 4900)
        write_footer("fleet", 1980)
        collect(out_dir, traj, label="r3")
        write_footer("fig7", 2500)   # far below median(5000,5200,4900)=5000
        write_footer("fleet", 2300)  # above median(2000,2040,1980)=2020 +13%
        collect(out_dir, traj, label="r4")
        rows = {r[0].split(" ")[0]: r for r in verdicts(load_trajectory(traj))}
        assert rows["fig7"][1] == "REGRESSED", rows["fig7"]
        assert rows["fig7"][3] == 5000.0, rows["fig7"]
        assert rows["fleet"][1] == "IMPROVED", rows["fleet"]
        # A looser threshold turns the improvement into OK.
        loose = {r[0].split(" ")[0]: r
                 for r in verdicts(load_trajectory(traj), threshold_pct=20)}
        assert loose["fleet"][1] == "OK", loose["fleet"]
        assert loose["fig7"][1] == "REGRESSED", loose["fig7"]

        # Mode split: the same bench at jobs=4 is a separate NEW series.
        write_footer("fig7", 9000, jobs=4)
        os.remove(os.path.join(out_dir, "BENCH_fleet.json"))
        collect(out_dir, traj)
        rows = verdicts(load_trajectory(traj))
        jobs4 = [r for r in rows if "jobs=4" in r[0]]
        assert len(jobs4) == 1 and jobs4[0][1] == "NEW", rows

        # Labels and run indices persist in the trajectory.
        doc = load_trajectory(traj)
        assert doc["entries"][0]["label"] == "r1"
        assert doc["entries"][-1]["run"] == 5, doc["entries"][-1]

        # A non-footer JSON is a parse error, not a silent skip.
        with open(os.path.join(out_dir, "BENCH_bogus.json"), "w",
                  encoding="utf-8") as f:
            f.write('{"not": "a footer"}')
        try:
            collect(out_dir, traj)
            raise AssertionError("bogus footer accepted")
        except ValueError:
            pass

        # An empty directory is an error too.
        empty = os.path.join(tmp, "empty")
        os.mkdir(empty)
        try:
            collect(empty, traj)
            raise AssertionError("empty dir accepted")
        except ValueError:
            pass

    print("bench_history self-test: OK")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) >= 4 and argv[1] == "collect":
        label = ""
        rest = argv[4:]
        if rest and rest[0] == "--label" and len(rest) == 2:
            label = rest[1]
        elif rest:
            sys.stderr.write(__doc__)
            return 2
        n = collect(argv[2], argv[3], label)
        print(f"collected {n} footer(s) into {argv[3]}")
        return 0
    if len(argv) >= 3 and argv[1] == "report":
        threshold = DEFAULT_THRESHOLD_PCT
        rest = argv[3:]
        if rest and rest[0] == "--threshold" and len(rest) == 2:
            threshold = float(rest[1])
        elif rest:
            sys.stderr.write(__doc__)
            return 2
        print_report(load_trajectory(argv[2]), threshold)
        return 0
    sys.stderr.write(__doc__)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except (OSError, ValueError, json.JSONDecodeError) as err:
        sys.stderr.write(f"bench_history: {err}\n")
        sys.exit(2)
