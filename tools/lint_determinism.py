#!/usr/bin/env python3
"""Determinism lint for the agile-migration simulator.

The simulator's contract is bit-for-bit reproducible runs: identical seeds and
configs must produce identical metrics (the golden tests depend on it, and so
does the run cache). This lint bans the constructs that silently break that
contract:

  wall-clock   std::chrono::system_clock / steady_clock /
               high_resolution_clock, time(), gettimeofday, clock_gettime —
               simulation logic must use SimTime, never host time.
  ambient rng  rand()/srand(), std::random_device, raw std::mt19937
               construction — all randomness must flow through util/rng so it
               is seeded explicitly.
  ptr-keyed    std::unordered_map/set keyed on a pointer type — iteration
               order follows the allocator, which varies run to run.
  uninit POD   scalar members without initializers in structs named
               *Metrics/*Stats/*Config/*Params/*Message/*Header — these
               structs are aggregate-built and memcmp'd/serialized, so an
               unwritten member leaks indeterminate bytes.

src/trace/, src/sim/, src/host/, src/core/, src/stats/, src/net/ and the
multi-stream wire module (src/migration/wire.* and stream_group.*) get a
stricter zero-tolerance profile on top of the above: trace exports, the event
core (heap + sharded lanes — execution order must be identical at every lane
count), the cluster orchestration layer, the scenario/testbed layer and the
network topology/allocation model (multi-hop routing plus the progressive-
filling allocator — flow delivery order feeds every golden byte count, and
the FleetRebalancer in src/core audits it move by move) drive everything the
golden tests pin byte-for-byte, so these modules may not even *include*
<chrono> or <random>, read the environment (getenv), or use unordered
containers at all (delivery and export order must never depend on hashing).
The one sanctioned getenv — the AGILE_SIM_LANES lane-count knob in
host/cluster.cpp, which selects *how* the identical schedule is computed,
never *what* it is — is carried as a justified allowlist entry.

Scope: src/, bench/ and examples/ (tests may use wall clocks for timeouts).
Exceptions go in tools/lint_determinism_allow.txt, one per line:

    path-suffix :: line-substring   # rationale

A finding is waived when the file path ends with `path-suffix` and the
offending line contains `line-substring`. Every entry must still match at
least one source line that would otherwise be a finding: stale entries are
hard errors (exit 2), so the allowlist can only shrink over time unless
someone writes down a new rationale.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCAN_DIRS = ("src", "bench", "examples")
EXTS = (".cpp", ".hpp", ".cc", ".h")
ALLOWLIST_PATH = os.path.join(REPO, "tools", "lint_determinism_allow.txt")

WALL_CLOCK = [
    (re.compile(r"\bsystem_clock\b"), "wall-clock: std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "wall-clock: std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "wall-clock: std::chrono::high_resolution_clock"),
    (re.compile(r"(?:^|[^_A-Za-z:.>])time\s*\(\s*(?:NULL|nullptr|0|&|\))"),
     "wall-clock: time()"),
    (re.compile(r"\bgettimeofday\s*\("), "wall-clock: gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "wall-clock: clock_gettime()"),
]

AMBIENT_RNG = [
    (re.compile(r"(?:^|[^_A-Za-z.:>])s?rand\s*\("), "ambient rng: rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "ambient rng: std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "ambient rng: raw std::mt19937"),
]

# std::unordered_map<Key*, ...> / unordered_set<Key*>: first template argument
# contains a '*' before the ',' or '>'.
PTR_KEYED = re.compile(r"\bunordered_(?:map|set)\s*<[^,<>]*\*")

# Stricter rules for the zero-tolerance modules. src/trace/ is the instrument
# every other determinism check reads through; the wire module (WireStream +
# StreamGroup) is the migration data path whose delivery order the golden
# metrics, golden traces and the multi-stream fences all pin byte-for-byte.
def strict_rules(module):
    return [
        (re.compile(r"#\s*include\s*<chrono>"),
         f"{module} module: <chrono> banned (timestamps come from the "
         "simulated clock only)"),
        (re.compile(r"#\s*include\s*<random>"),
         f"{module} module: <random> banned (no randomness in this path)"),
        (re.compile(r"\bgetenv\s*\("),
         f"{module} module: getenv banned (behaviour is configured by API, "
         "not ambient environment)"),
        (re.compile(r"\bunordered_(?:map|set)\b"),
         f"{module} module: unordered containers banned (ordering must not "
         "depend on hashing)"),
    ]


TRACE_STRICT = strict_rules("trace")
WIRE_STRICT = strict_rules("wire")
# The event core: the heap and the sharded lane coordinator decide execution
# order for everything else, and that order must be identical at every lane
# count (AGILE_SIM_LANES itself is resolved in host/cluster and carried as a
# justified allowlist entry).
SIM_STRICT = strict_rules("sim")
# Cluster orchestration (quantum loop, lane planning, migration scheduling):
# everything here runs inside the simulated clock and is pinned by the golden
# fleet/consolidation metrics.
HOST_STRICT = strict_rules("host")
# Scenario factories and the testbed: they *construct* the deterministic
# world, so any ambient input here skews every golden table downstream.
CORE_STRICT = strict_rules("core")
# The metrics registry: golden stats snapshots are byte-compared across lane
# counts, job counts and reruns, so the module may not read wall clocks, the
# environment, or order anything by hash.
STATS_STRICT = strict_rules("stats")
# The network model: static multi-hop routing and the max–min progressive-
# filling allocator decide per-quantum delivered bytes, which every migration
# golden, the per-tier stats gauges and the fleet_topology golden block pin
# byte-for-byte across lane/job counts. (The FleetRebalancer that audits
# moves over this fabric lives in src/core and rides the core profile.)
NET_STRICT = strict_rules("net")


def in_trace_module(relpath):
    return relpath.startswith("src" + os.sep + "trace" + os.sep)


def in_sim_module(relpath):
    return relpath.startswith("src" + os.sep + "sim" + os.sep)


def in_host_module(relpath):
    return relpath.startswith("src" + os.sep + "host" + os.sep)


def in_core_module(relpath):
    return relpath.startswith("src" + os.sep + "core" + os.sep)


def in_stats_module(relpath):
    return relpath.startswith("src" + os.sep + "stats" + os.sep)


def in_net_module(relpath):
    return relpath.startswith("src" + os.sep + "net" + os.sep)


def in_wire_module(relpath):
    base = os.path.basename(relpath)
    return (os.sep + "migration" + os.sep in relpath
            and (base.startswith("wire") or base.startswith("stream_group")))

STRUCT_NAME = re.compile(
    r"^\s*struct\s+(\w*(?:Metrics|Stats|Config|Params|Message|Header))\b[^;]*$")
# A scalar member without an initializer: `type name;` where type is an
# arithmetic/typedef-looking token chain and there is no '=' or '{' before ';'.
SCALAR_MEMBER = re.compile(
    r"^\s*(?:const\s+)?"
    r"((?:unsigned\s+|signed\s+|long\s+|short\s+)*"
    r"(?:bool|char|int|long|short|float|double|size_t|std::size_t|"
    r"std::u?int\d+_t|u?int\d+_t|SimTime|Bytes|PageIndex|NodeId|EventId))\s+"
    r"(\w+)\s*;\s*(?://.*)?$")


def strip_line_comment(line):
    """Remove a trailing // comment (string literals are rare enough in this
    codebase that we accept the occasional false negative inside one)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def load_allowlist():
    entries = []
    if not os.path.exists(ALLOWLIST_PATH):
        return entries
    with open(ALLOWLIST_PATH, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "::" not in line:
                print(f"lint_determinism: bad allowlist entry: {raw.rstrip()}",
                      file=sys.stderr)
                sys.exit(2)
            suffix, substr = (part.strip() for part in line.split("::", 1))
            entries.append({"suffix": suffix, "substr": substr,
                            "lineno": lineno, "used": False})
    return entries


def allowed(entries, relpath, line):
    hit = False
    for e in entries:
        if relpath.endswith(e["suffix"]) and e["substr"] in line:
            e["used"] = True
            hit = True
    return hit


def in_rng_module(relpath):
    base = os.path.basename(relpath)
    return os.sep + "util" + os.sep in relpath and base.startswith("rng")


def scan_file(relpath, allow):
    findings = []
    path = os.path.join(REPO, relpath)
    with open(path, encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()

    in_block_comment = False
    struct_stack = []  # (name, brace_depth_at_entry)
    depth = 0
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        # Block comments: drop commented spans (coarse, line-granular).
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                continue
        if "/*" in line and "*/" not in line:
            line = line.split("/*", 1)[0]
            in_block_comment = True
        line = strip_line_comment(line)
        if not line.strip():
            depth += raw.count("{") - raw.count("}")
            continue

        def report(msg, text=line):
            if not allowed(allow, relpath, raw):
                findings.append((relpath, lineno, msg, text.strip()))

        for pat, msg in WALL_CLOCK:
            if pat.search(line):
                report(msg)
        if not in_rng_module(relpath):
            for pat, msg in AMBIENT_RNG:
                if pat.search(line):
                    report(msg)
        if PTR_KEYED.search(line):
            report("pointer-keyed unordered container (iteration order is "
                   "allocator-dependent)")
        if in_trace_module(relpath):
            for pat, msg in TRACE_STRICT:
                if pat.search(line):
                    report(msg)
        if in_sim_module(relpath):
            for pat, msg in SIM_STRICT:
                if pat.search(line):
                    report(msg)
        if in_host_module(relpath):
            for pat, msg in HOST_STRICT:
                if pat.search(line):
                    report(msg)
        if in_core_module(relpath):
            for pat, msg in CORE_STRICT:
                if pat.search(line):
                    report(msg)
        if in_stats_module(relpath):
            for pat, msg in STATS_STRICT:
                if pat.search(line):
                    report(msg)
        if in_net_module(relpath):
            for pat, msg in NET_STRICT:
                if pat.search(line):
                    report(msg)
        if in_wire_module(relpath):
            for pat, msg in WIRE_STRICT:
                if pat.search(line):
                    report(msg)

        m = STRUCT_NAME.match(line)
        if m and ";" not in line:
            struct_stack.append((m.group(1), depth))
        if struct_stack:
            name, entry_depth = struct_stack[-1]
            mm = SCALAR_MEMBER.match(line)
            # Only direct members (depth is entry_depth + 1 inside the body).
            if mm and depth == entry_depth + 1:
                report(f"uninitialized scalar member '{mm.group(2)}' in "
                       f"struct {name} (add a default initializer)")
        depth += line.count("{") - line.count("}")
        while struct_stack and depth <= struct_stack[-1][1]:
            struct_stack.pop()
    return findings


def main():
    allow = load_allowlist()
    findings = []
    for top in SCAN_DIRS:
        for dirpath, _dirnames, filenames in os.walk(os.path.join(REPO, top)):
            for fn in sorted(filenames):
                if not fn.endswith(EXTS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, fn), REPO)
                findings.extend(scan_file(rel, allow))
    stale = [e for e in allow if not e["used"]]
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s):\n")
        for relpath, lineno, msg, text in findings:
            print(f"  {relpath}:{lineno}: {msg}\n      {text}")
        print("\nFix the construct or add a justified entry to "
              "tools/lint_determinism_allow.txt")
        return 1
    if stale:
        for e in stale:
            print(f"lint_determinism: stale allowlist entry at "
                  f"tools/lint_determinism_allow.txt:{e['lineno']} "
                  f"({e['suffix']} :: {e['substr']}) matches no source line "
                  f"— delete it")
        return 2
    print("lint_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
