#!/usr/bin/env bash
# clang-tidy over only the files changed vs HEAD~1 plus the working tree.
#
# Cheap PR-scoped static analysis: the full-tree tidy preset takes much
# longer, this checks just what a change touched. Uses the .clang-tidy at the
# repo root and the compilation database from the default build tree
# (configure the `default` preset first so build/compile_commands.json
# exists).
#
# Exit codes: 0 clean, 1 findings, 77 skipped (clang-tidy or the compilation
# database is unavailable — ctest maps 77 to "skipped" via SKIP_RETURN_CODE).

set -u
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang_tidy_diff: clang-tidy not found on PATH; skipping"
  exit 77
fi

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "clang_tidy_diff: $BUILD_DIR/compile_commands.json missing" \
    "(configure the default preset first); skipping"
  exit 77
fi

# Changed C++ sources: last commit plus anything staged/unstaged.
mapfile -t changed < <(
  {
    git diff --name-only --diff-filter=d HEAD~1 2>/dev/null ||
      git diff --name-only --diff-filter=d HEAD
    git diff --name-only --diff-filter=d
  } | sort -u | grep -E '^(src|bench|tests|examples)/.*\.(cpp|cc)$'
)

if [ ${#changed[@]} -eq 0 ]; then
  echo "clang_tidy_diff: no changed C++ sources"
  exit 0
fi

echo "clang_tidy_diff: checking ${#changed[@]} file(s)"
status=0
for f in "${changed[@]}"; do
  [ -f "$f" ] || continue
  echo "-- $f"
  clang-tidy -p "$BUILD_DIR" --quiet "$f" || status=1
done
exit $status
