#!/usr/bin/env bash
# Full correctness matrix for the agile-migration simulator.
#
# Legs, in order:
#   1. werror        — default preset rebuilt with AGILE_WERROR=ON
#                      (warning-clean gate)
#   2. lint          — tools/lint_determinism.py over src/ + bench/ + examples/
#   3. lane-lint     — tools/lane_lint.py lane-confinement analyzer
#                      (self-test fixtures + clean real tree)
#   4. thread-safety — clang -Wthread-safety over the AGILE_* annotations
#                      (tools/check_thread_safety.sh; SKIP without clang++)
#   5. asan-ubsan    — full ctest suite under ASan+UBSan with audits compiled in
#   6. tsan          — thread_pool / parallel_sweep / wire tests under TSan
#   7. tidy          — clang-tidy over every TU (SKIP when absent)
#
# Usage:
#   tools/analyze.sh              # run everything (same as `all`)
#   tools/analyze.sh all          # explicit: the whole matrix
#   tools/analyze.sh werror lint  # run a subset of legs
#
# Every leg lands in the single summary table at the end as PASS / FAIL /
# SKIP(reason); the exit status is non-zero iff some leg FAILed (SKIPs are
# visible but never fail the run — missing clang must not mask real failures
# on machines that do have it).
#
# Expected wall time on one core: werror ~3 min, asan-ubsan ~10 min,
# tsan ~2 min, the static legs seconds.

set -u
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
ALL_LEGS=(werror lint lane-lint thread-safety asan-ubsan tsan tidy)
LEGS=("$@")
if [ ${#LEGS[@]} -eq 0 ] || [ "${LEGS[0]}" = all ]; then
  LEGS=("${ALL_LEGS[@]}")
fi

declare -A RESULT
FAILED=0

want() {
  local leg
  for leg in "${LEGS[@]}"; do [ "$leg" = "$1" ] && return 0; done
  return 1
}

record() { # name status
  RESULT[$1]=$2
  if [ "$2" = FAIL ]; then
    FAILED=1
    echo "== $1: FAIL"
  else
    echo "== $1: $2"
  fi
}

# Runs a command that follows the 0/1/77 convention and records
# PASS / FAIL / SKIP(reason) accordingly.
record_rc() { # name rc skip-reason
  local name=$1 rc=$2 reason=$3
  if [ "$rc" -eq 0 ]; then
    record "$name" PASS
  elif [ "$rc" -eq 77 ]; then
    record "$name" "SKIP ($reason)"
  else
    record "$name" FAIL
  fi
}

run_preset_tests() { # preset extra-ctest-args...
  local preset=$1
  shift
  cmake --preset "$preset" >/dev/null &&
    cmake --build --preset "$preset" -j "$JOBS" &&
    ctest --preset "$preset" -j "$JOBS" "$@"
}

if want werror; then
  echo "== werror: default build with -Werror"
  if cmake --preset default -DAGILE_WERROR=ON >/dev/null &&
    cmake --build --preset default -j "$JOBS"; then
    record werror PASS
  else
    record werror FAIL
  fi
  # Leave the default tree warning-tolerant for everyday incremental builds.
  cmake --preset default -DAGILE_WERROR=OFF >/dev/null
fi

if want lint; then
  echo "== lint: determinism lint over src/ + bench/ + examples/"
  if python3 tools/lint_determinism.py; then
    record lint PASS
  else
    record lint FAIL
  fi
fi

if want lane-lint; then
  echo "== lane-lint: lane-confinement analyzer (fixtures + real tree)"
  python3 tools/lane_lint.py --self-test
  record_rc lane-lint $? "python3 not usable"
fi

if want thread-safety; then
  echo "== thread-safety: clang -Wthread-safety over the annotated tree"
  tools/check_thread_safety.sh
  record_rc thread-safety $? "clang++ not found"
fi

if want asan-ubsan; then
  echo "== asan-ubsan: full suite under ASan+UBSan (audits on)"
  if run_preset_tests asan-ubsan; then
    record asan-ubsan PASS
  else
    record asan-ubsan FAIL
  fi
fi

if want tsan; then
  echo "== tsan: thread_pool / parallel_sweep / wire under TSan (audits on)"
  if run_preset_tests tsan; then
    record tsan PASS
  else
    record tsan FAIL
  fi
fi

if want tidy; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== tidy: clang-tidy over all TUs"
    if cmake --preset tidy >/dev/null &&
      cmake --build --preset tidy -j "$JOBS"; then
      record tidy PASS
    else
      record tidy FAIL
    fi
  else
    record tidy "SKIP (clang-tidy not found)"
  fi
fi

echo
echo "=== analyze.sh summary ==="
for leg in "${LEGS[@]}"; do
  printf '  %-14s %s\n' "$leg" "${RESULT[$leg]:-not run}"
done
exit $FAILED
