#!/usr/bin/env bash
# Full correctness matrix for the agile-migration simulator.
#
# Runs, in order:
#   1. werror     — default preset rebuilt with AGILE_WERROR=ON (warning-clean gate)
#   2. lint       — tools/lint_determinism.py over src/ + bench/ + examples/
#   3. asan-ubsan — full ctest suite under ASan+UBSan with audits compiled in
#   4. tsan       — thread_pool / parallel_sweep / wire tests under TSan
#   5. tidy       — clang-tidy over every TU (skipped when clang-tidy is absent)
#
# Usage:
#   tools/analyze.sh              # run everything
#   tools/analyze.sh werror lint  # run a subset of legs
#
# Expected wall time on one core: werror ~3 min, asan-ubsan ~10 min,
# tsan ~2 min, lint seconds.

set -u
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
LEGS=("$@")
[ ${#LEGS[@]} -eq 0 ] && LEGS=(werror lint asan-ubsan tsan tidy)

declare -A RESULT
FAILED=0

want() {
  local leg
  for leg in "${LEGS[@]}"; do [ "$leg" = "$1" ] && return 0; done
  return 1
}

record() { # name status
  RESULT[$1]=$2
  if [ "$2" = FAIL ]; then
    FAILED=1
    echo "== $1: FAIL"
  else
    echo "== $1: $2"
  fi
}

run_preset_tests() { # preset extra-ctest-args...
  local preset=$1
  shift
  cmake --preset "$preset" >/dev/null &&
    cmake --build --preset "$preset" -j "$JOBS" &&
    ctest --preset "$preset" -j "$JOBS" "$@"
}

if want werror; then
  echo "== werror: default build with -Werror"
  if cmake --preset default -DAGILE_WERROR=ON >/dev/null &&
    cmake --build --preset default -j "$JOBS"; then
    record werror PASS
  else
    record werror FAIL
  fi
  # Leave the default tree warning-tolerant for everyday incremental builds.
  cmake --preset default -DAGILE_WERROR=OFF >/dev/null
fi

if want lint; then
  echo "== lint: determinism lint over src/ + bench/ + examples/"
  if python3 tools/lint_determinism.py; then
    record lint PASS
  else
    record lint FAIL
  fi
fi

if want asan-ubsan; then
  echo "== asan-ubsan: full suite under ASan+UBSan (audits on)"
  if run_preset_tests asan-ubsan; then
    record asan-ubsan PASS
  else
    record asan-ubsan FAIL
  fi
fi

if want tsan; then
  echo "== tsan: thread_pool / parallel_sweep / wire under TSan (audits on)"
  if run_preset_tests tsan; then
    record tsan PASS
  else
    record tsan FAIL
  fi
fi

if want tidy; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== tidy: clang-tidy over all TUs"
    if cmake --preset tidy >/dev/null &&
      cmake --build --preset tidy -j "$JOBS"; then
      record tidy PASS
    else
      record tidy FAIL
    fi
  else
    record tidy "SKIP (clang-tidy not found)"
  fi
fi

echo
echo "=== analyze.sh summary ==="
for leg in "${LEGS[@]}"; do
  printf '  %-10s %s\n' "$leg" "${RESULT[$leg]:-not run}"
done
exit $FAILED
